(* Synthetic graph families and their plumbing through Scenario.

   Three layers are exercised here: the generators themselves (structural
   invariants under QCheck randomisation plus seed determinism), the
   Topology wrapper (synthetic graphs must present sensed == rx at the
   decode threshold and answer reach queries with the embedded coordinate
   range), and the Scenario layer (fail-fast [Unreachable], selective
   jamming, and dense/sparse byte-equivalence on the explicit graph
   classes — the wakeup-driven loop has no geometric assumptions to hide
   behind there). *)

let structural name topology =
  let g = Topology.graph topology in
  if not (Graph.is_symmetric g) then QCheck.Test.fail_reportf "%s: asymmetric decode edge" name;
  if not (Graph.is_connected g) then QCheck.Test.fail_reportf "%s: disconnected" name;
  if Topology.is_geometric topology then QCheck.Test.fail_reportf "%s: not Synthetic" name;
  (* Synthetic topologies carry no propagation model: the sense graph is
     the decode graph, at exactly the decode threshold. *)
  Array.iteri
    (fun i row ->
      let rx = (Topology.rx topology).(i) in
      if Array.length row <> Array.length rx then
        QCheck.Test.fail_reportf "%s: sensed row %d differs from rx row" name i;
      Array.iteri
        (fun k { Topology.peer; power } ->
          if peer <> rx.(k) || power <> 1.0 then
            QCheck.Test.fail_reportf "%s: sensed row %d not rx at power 1.0" name i)
        row)
    (Topology.sensed topology);
  g

let edge_count g =
  let total = Array.fold_left (fun acc row -> acc + Array.length row) 0 g.Graph.rx in
  total / 2

let prop_grid_holes =
  QCheck.Test.make ~name:"grid-with-holes: connected 4-grid minus at most [holes] nodes"
    ~count:60
    QCheck.(quad (int_range 2 8) (int_range 2 8) (int_bound 20) (int_bound 10_000))
    (fun (width, height, holes, seed) ->
      let holes = min holes ((width * height) - 2) in
      let t = Graphs.grid_with_holes (Rng.create seed) ~width ~height ~holes in
      let g = structural "grid_holes" t in
      let n = Graph.size g in
      if n < (width * height) - holes || n > width * height then
        QCheck.Test.fail_reportf "size %d outside [%d, %d]" n ((width * height) - holes)
          (width * height);
      if Graph.max_degree g > 4 then
        QCheck.Test.fail_reportf "degree %d exceeds 4-adjacency" (Graph.max_degree g);
      true)

let prop_corridor =
  QCheck.Test.make ~name:"corridor: exact size, connected, rooms reachable only through halls"
    ~count:40
    QCheck.(quad (int_range 2 4) (int_range 2 5) (int_range 2 5) (int_range 1 4))
    (fun (rooms, room_w, room_h, hall_len) ->
      let t = Graphs.corridor ~rooms ~room_w ~room_h ~hall_len in
      let g = structural "corridor" t in
      let expected = (rooms * room_w * room_h) + ((rooms - 1) * hall_len) in
      if Graph.size g <> expected then
        QCheck.Test.fail_reportf "size %d, expected %d" (Graph.size g) expected;
      (* Every inter-room path crosses every hall: the hop diameter is at
         least the total hall length. *)
      let diameter = Graph.hop_diameter_from g 0 in
      if diameter < (rooms - 1) * hall_len then
        QCheck.Test.fail_reportf "diameter %d below hall total %d" diameter
          ((rooms - 1) * hall_len);
      true)

let prop_triangulation =
  QCheck.Test.make ~name:"triangulation: planar edge bound and full cell coverage" ~count:60
    QCheck.(
      quad (int_range 2 8) (int_range 2 8)
        (float_range 0.0 0.4 (* clamped to < 0.25 by the generator *))
        (int_bound 10_000))
    (fun (cols, rows, jitter, seed) ->
      let t = Graphs.triangulation (Rng.create seed) ~cols ~rows ~jitter in
      let g = structural "triangulation" t in
      let n = Graph.size g in
      if n <> (cols + 1) * (rows + 1) then
        QCheck.Test.fail_reportf "size %d, expected %d" n ((cols + 1) * (rows + 1));
      let edges = edge_count g in
      (* Planarity (Euler): at most 3n - 6 edges.  Construction: all cell
         sides plus exactly one diagonal per cell. *)
      let sides = (cols * (rows + 1)) + (rows * (cols + 1)) in
      let expected = sides + (cols * rows) in
      if edges <> expected then QCheck.Test.fail_reportf "%d edges, expected %d" edges expected;
      if edges > (3 * n) - 6 then QCheck.Test.fail_reportf "%d edges breaks planarity bound" edges;
      true)

let prop_expander =
  QCheck.Test.make ~name:"expander: degrees within [2, degree], connected ring backbone"
    ~count:60
    QCheck.(triple (int_range 4 100) (int_range 3 6) (int_bound 10_000))
    (fun (n, degree, seed) ->
      let t = Graphs.expander (Rng.create seed) ~n ~degree in
      let g = structural "expander" t in
      if Graph.size g <> n then QCheck.Test.fail_reportf "size %d, expected %d" (Graph.size g) n;
      Array.iteri
        (fun i _ ->
          let d = Graph.degree g i in
          if d < 2 || d > degree then
            QCheck.Test.fail_reportf "node %d degree %d outside [2, %d]" i d degree)
        g.Graph.rx;
      true)

let prop_lattice =
  QCheck.Test.make ~name:"lattice: Moore adjacency with Chebyshev hop metric" ~count:40
    QCheck.(pair (int_range 2 8) (int_range 2 8))
    (fun (width, height) ->
      let t = Graphs.lattice ~width ~height in
      let g = structural "lattice" t in
      if Graph.size g <> width * height then
        QCheck.Test.fail_reportf "size %d, expected %d" (Graph.size g) (width * height);
      if Graph.max_degree g > 8 then
        QCheck.Test.fail_reportf "degree %d exceeds Moore adjacency" (Graph.max_degree g);
      (* Moore hops are the Chebyshev distance: from the corner, exactly
         max(width, height) - 1. *)
      let diameter = Graph.hop_diameter_from g 0 in
      if diameter <> max width height - 1 then
        QCheck.Test.fail_reportf "corner eccentricity %d, expected %d" diameter
          (max width height - 1);
      true)

let prop_seed_determinism =
  QCheck.Test.make ~name:"randomised generators are pure functions of the seed" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let same_rx a b =
        let ra = Topology.rx a and rb = Topology.rx b in
        Array.length ra = Array.length rb && Array.for_all2 (fun x y -> x = y) ra rb
      in
      let twice f = same_rx (f (Rng.create seed)) (f (Rng.create seed)) in
      twice (fun rng -> Graphs.grid_with_holes rng ~width:6 ~height:5 ~holes:6)
      && twice (fun rng -> Graphs.triangulation rng ~cols:5 ~rows:4 ~jitter:0.2)
      && twice (fun rng -> Graphs.expander rng ~n:40 ~degree:4))

(* --- Scenario plumbing ------------------------------------------------- *)

let graph_spec ~deployment ~protocol =
  {
    Scenario.default with
    Scenario.deployment;
    message = Bitvec.of_string "101";
    protocol;
    cap = 120_000;
    seed = 11;
  }

let test_reach_is_coord_range () =
  let t = Graphs.corridor ~rooms:2 ~room_w:3 ~room_h:3 ~hall_len:2 in
  (match Topology.kind t with
  | Topology.Synthetic { coord_range; _ } ->
    Alcotest.(check (float 0.0)) "sense_reach" coord_range (Topology.sense_reach t);
    Alcotest.(check (float 0.0)) "rx_reach" coord_range (Topology.rx_reach t);
    Alcotest.(check bool) "reach covers an edge" true (coord_range >= 1.0)
  | Topology.Radio _ -> Alcotest.fail "corridor built a Radio topology");
  Alcotest.(check string) "family" "corridor" (Topology.family t)

let test_unreachable_fail_fast () =
  (* 30 nodes with R=1 on a 40x40 map: the decode graph is shattered, and
     run must say so before executing a single round. *)
  let spec =
    {
      Scenario.default with
      Scenario.map_w = 40.0;
      map_h = 40.0;
      deployment = Scenario.Uniform 30;
      radius = 1.0;
      message = Bitvec.of_string "101";
      cap = 1_000;
      seed = 3;
    }
  in
  (match Scenario.run spec with
  | exception Scenario.Unreachable { unreachable; total } ->
    Alcotest.(check int) "total" 30 total;
    Alcotest.(check bool) "some unreachable" true (unreachable > 0)
  | _ -> Alcotest.fail "expected Scenario.Unreachable");
  (* The opt-out reports the same deployment as partial coverage instead. *)
  let result = Scenario.run { spec with Scenario.allow_unreachable = true } in
  let summary = Scenario.summarize result in
  Alcotest.(check bool) "partial coverage" true (summary.Scenario.completion_rate < 1.0)

let test_selective_jam_safe () =
  (* Schedule-aware jammers can stall MultiPathRB but never corrupt it:
     every delivery that does happen is the source's message. *)
  let spec =
    {
      (graph_spec
         ~deployment:(Scenario.Lattice { width = 8; height = 8 })
         ~protocol:(Scenario.Multi_path { tolerance = 1 }))
      with
      Scenario.faults = Scenario.Selective_jam { fraction = 0.1; budget = 40; probability = 1.0 };
    }
  in
  let summary = Scenario.summarize (Scenario.run spec) in
  Alcotest.(check (float 0.0))
    "no wrong deliveries" 1.0 summary.Scenario.correct_of_delivered;
  Alcotest.(check bool) "someone still delivers" true (summary.Scenario.delivered_any > 0)

(* --- dense/sparse equivalence on explicit graphs ----------------------- *)

let check_equivalent name spec =
  let dense_trace, dense = Determinism.capture_spec ~mode:`Dense spec in
  let sparse_trace, sparse = Determinism.capture_spec ~mode:`Sparse spec in
  (match Determinism.diff dense_trace sparse_trace with
  | Determinism.Deterministic _ -> ()
  | Determinism.Diverged _ as o ->
    Alcotest.failf "%s: dense/sparse traces differ: %s" name (Determinism.outcome_to_string o));
  let d = dense.Scenario.engine and s = sparse.Scenario.engine in
  Alcotest.(check int) (name ^ ": rounds_used") d.Engine.rounds_used s.Engine.rounds_used;
  Alcotest.(check (array int)) (name ^ ": broadcasts") d.Engine.broadcasts s.Engine.broadcasts;
  Alcotest.(check (array int))
    (name ^ ": completion rounds")
    d.Engine.completion_round s.Engine.completion_round

(* One graph class per protocol, rotating so every new deployment kind and
   every protocol (including CPA) runs under both engine loops. *)
let equivalence_cases =
  [
    ("nw1/grid-holes", Scenario.Neighbor_watch { votes = 1 },
     Scenario.Grid_holes { width = 6; height = 5; holes = 4 });
    ("nw2/corridor", Scenario.Neighbor_watch { votes = 2 },
     Scenario.Corridor { rooms = 2; room_w = 3; room_h = 3; hall_len = 2 });
    ("mp1/triangulated", Scenario.Multi_path { tolerance = 1 },
     Scenario.Triangulated { cols = 4; rows = 4; jitter = 0.2 });
    ("epi/expander", Scenario.Epidemic, Scenario.Expander { n = 30; degree = 4 });
    ("cpa1/lattice", Scenario.Certified { tolerance = 1 },
     Scenario.Lattice { width = 6; height = 6 });
  ]

let equivalence_tests =
  List.map
    (fun (name, protocol, deployment) ->
      Alcotest.test_case name `Quick (fun () ->
          check_equivalent name (graph_spec ~deployment ~protocol)))
    equivalence_cases

let () =
  Alcotest.run "graphs"
    [
      ( "generator invariants",
        List.map
          (fun t -> QCheck_alcotest.to_alcotest ~long:false t)
          [
            prop_grid_holes; prop_corridor; prop_triangulation; prop_expander; prop_lattice;
            prop_seed_determinism;
          ] );
      ( "scenario plumbing",
        [
          Alcotest.test_case "synthetic reach = coord_range" `Quick test_reach_is_coord_range;
          Alcotest.test_case "Unreachable fail-fast" `Quick test_unreachable_fail_fast;
          Alcotest.test_case "selective jam never corrupts" `Quick test_selective_jam_safe;
        ] );
      ("dense/sparse on explicit graphs", equivalence_tests);
    ]
