(* Tests for the domain-parallel job runner: the worker pool, the
   experiment registry, and the byte-identity of parallel vs sequential
   execution of registry jobs. *)

(* --- Pool ---------------------------------------------------------------- *)

(* The pool is a drop-in parallel map: same results, same order, for any
   worker count. *)
let prop_pool_matches_map =
  QCheck.Test.make ~name:"Pool.map_list = List.map (jobs 1..6)" ~count:60
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_bound 50) small_int))
    (fun (jobs, xs) ->
      let f x = (x * x) - (3 * x) + 7 in
      Pool.map_list ~jobs f xs = List.map f xs)

let test_pool_empty () =
  Alcotest.(check (list int)) "empty input" [] (Pool.map_list ~jobs:4 (fun x -> x) [])

let test_pool_order () =
  let xs = List.init 200 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved" (List.map succ xs)
    (Pool.map_list ~jobs:4 succ xs)

exception Boom of int

let test_pool_exception () =
  let f x = if x = 137 then raise (Boom x) else x in
  let xs = Array.init 300 (fun i -> i) in
  Alcotest.check_raises "worker exception re-raised" (Boom 137) (fun () ->
      ignore (Pool.map_array ~jobs:4 f xs))

let test_pool_cores () =
  Alcotest.(check bool) "at least one core" true (Pool.available_cores () >= 1)

(* --- Registry ------------------------------------------------------------ *)

let expected_ids =
  [
    "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8a"; "e8b"; "e8c"; "a1"; "a2"; "a3";
    "a4"; "a5"; "bounds"; "mobile";
  ]

let test_registry_complete () =
  Alcotest.(check (list string)) "every experiment registered" expected_ids Registry.ids

let test_registry_unique () =
  let sorted = List.sort_uniq compare Registry.ids in
  Alcotest.(check int) "ids are unique" (List.length Registry.ids) (List.length sorted)

let test_registry_find () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some job -> Alcotest.(check string) ("find " ^ id) id job.Experiment.id
      | None -> Alcotest.failf "Registry.find %s = None" id)
    expected_ids;
  (match Registry.find "E8A" with
  | Some job -> Alcotest.(check string) "case-insensitive" "e8a" job.Experiment.id
  | None -> Alcotest.fail "Registry.find E8A = None");
  Alcotest.(check bool) "unknown id" true (Registry.find "e99" = None)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_selection () =
  (match Bench.selection [ "a3"; "e1" ] with
  | Ok jobs ->
    Alcotest.(check (list string)) "canonical order kept" [ "e1"; "a3" ]
      (List.map (fun job -> job.Experiment.id) jobs)
  | Error m -> Alcotest.fail m);
  match Bench.selection [ "e1"; "nope" ] with
  | Ok _ -> Alcotest.fail "unknown id accepted"
  | Error message ->
    Alcotest.(check bool) "names the unknown id" true (contains ~needle:"nope" message)

(* --- Runner byte-identity ------------------------------------------------- *)

(* The acceptance bar for the parallel runner: the rendered table, the fits,
   the notes and the stable JSON of `--jobs 4` are byte-identical to
   `--jobs 1`.  Sampled on the cheap registry jobs (an analytic table, a
   theory sweep, a small simulation grid). *)
let test_parallel_identity () =
  List.iter
    (fun id ->
      let job =
        match Registry.find id with
        | Some job -> job
        | None -> Alcotest.failf "missing job %s" id
      in
      let sequential = Runner.run_job ~jobs:1 ~scale:Experiment.Quick job in
      let parallel = Runner.run_job ~jobs:4 ~scale:Experiment.Quick job in
      Alcotest.(check string)
        (id ^ ": rendered output identical")
        (Runner.render sequential) (Runner.render parallel);
      Alcotest.(check string)
        (id ^ ": stable JSON identical")
        (Json.to_string (Runner.stable_json sequential))
        (Json.to_string (Runner.stable_json parallel)))
    [ "bounds"; "e8a"; "a3" ]

let qtests = [ prop_pool_matches_map ]

let () =
  Alcotest.run "run"
    [
      ( "pool",
        [
          Alcotest.test_case "empty" `Quick test_pool_empty;
          Alcotest.test_case "order" `Quick test_pool_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "available cores" `Quick test_pool_cores;
        ] );
      ( "registry",
        [
          Alcotest.test_case "completeness" `Quick test_registry_complete;
          Alcotest.test_case "unique ids" `Quick test_registry_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "bench selection" `Quick test_selection;
        ] );
      ( "runner",
        [ Alcotest.test_case "jobs=4 byte-identical to jobs=1" `Quick test_parallel_identity ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
