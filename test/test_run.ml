(* Tests for the domain-parallel job runner: the worker pool, the
   experiment registry, and the byte-identity of parallel vs sequential
   execution of registry jobs. *)

(* --- Pool ---------------------------------------------------------------- *)

(* The pool is a drop-in parallel map: same results, same order, for any
   worker count. *)
let prop_pool_matches_map =
  QCheck.Test.make ~name:"Pool.map_list = List.map (jobs 1..6)" ~count:60
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_bound 50) small_int))
    (fun (jobs, xs) ->
      let f x = (x * x) - (3 * x) + 7 in
      Pool.map_list ~jobs f xs = List.map f xs)

let test_pool_empty () =
  Alcotest.(check (list int)) "empty input" [] (Pool.map_list ~jobs:4 (fun x -> x) [])

let test_pool_order () =
  let xs = List.init 200 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved" (List.map succ xs)
    (Pool.map_list ~jobs:4 succ xs)

exception Boom of int

let test_pool_exception () =
  let f x = if x = 137 then raise (Boom x) else x in
  let xs = Array.init 300 (fun i -> i) in
  Alcotest.check_raises "worker exception re-raised" (Boom 137) (fun () ->
      ignore (Pool.map_array ~jobs:4 f xs))

let test_pool_cores () =
  Alcotest.(check bool) "at least one core" true (Pool.available_cores () >= 1)

(* The in-memory twin of fixtures/racy_counter.ml: tasks share a captured
   counter, so each result depends on scheduling.  The sanitizer must
   refuse the run.  (Share_lint flags the committed fixture statically;
   test_check covers that half.) *)
let test_pool_sanitize_catches_race () =
  let hits = ref 0 in
  let racy spec =
    hits := !hits + spec;
    !hits
  in
  match Pool.map_array ~sanitize:true ~jobs:4 racy (Array.init 64 (fun i -> i + 1)) with
  | _ -> Alcotest.fail "sanitizer accepted a racy task array"
  | exception Pool.Nondeterministic { index; divergent } ->
    Alcotest.(check bool) "divergent index in range" true (index >= 0 && index < 64);
    Alcotest.(check bool) "at least one divergent slot" true (divergent >= 1)

let test_pool_sanitize_clean () =
  let f x = (x * 17) mod 101 in
  let xs = Array.init 200 (fun i -> i) in
  Alcotest.(check (array int)) "self-contained tasks pass the sanitizer" (Array.map f xs)
    (Pool.map_array ~sanitize:true ~jobs:4 f xs)

let test_pool_worker_stats () =
  let results, stats = Pool.map_array_stats ~jobs:3 (fun i -> i * i) (Array.init 30 (fun i -> i)) in
  Alcotest.(check (array int)) "results unchanged" (Array.init 30 (fun i -> i * i)) results;
  Alcotest.(check int) "one stat per domain" 3 (List.length stats);
  Alcotest.(check (list int)) "domains numbered from the caller" [ 0; 1; 2 ]
    (List.map (fun s -> s.Pool.domain_index) stats);
  Alcotest.(check int) "every task accounted for" 30
    (List.fold_left (fun acc s -> acc + s.Pool.tasks_run) 0 stats);
  (* Sequential execution reports a single coordinator entry. *)
  match Pool.map_array_stats ~jobs:1 (fun i -> i) (Array.init 5 (fun i -> i)) with
  | _, [ s ] ->
    Alcotest.(check int) "coordinator domain" 0 s.Pool.domain_index;
    Alcotest.(check int) "all tasks on it" 5 s.Pool.tasks_run
  | _, stats -> Alcotest.failf "expected one sequential stat, got %d" (List.length stats)

(* --- Registry ------------------------------------------------------------ *)

let expected_ids =
  [
    "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8a"; "e8b"; "e8c"; "a1"; "a2"; "a3";
    "a4"; "a5"; "bounds"; "mobile"; "g1"; "s1";
  ]

let test_registry_complete () =
  Alcotest.(check (list string)) "every experiment registered" expected_ids Registry.ids

let test_registry_unique () =
  let sorted = List.sort_uniq String.compare Registry.ids in
  Alcotest.(check int) "ids are unique" (List.length Registry.ids) (List.length sorted)

let test_registry_find () =
  List.iter
    (fun id ->
      match Registry.find id with
      | Some job -> Alcotest.(check string) ("find " ^ id) id job.Experiment.id
      | None -> Alcotest.failf "Registry.find %s = None" id)
    expected_ids;
  (match Registry.find "E8A" with
  | Some job -> Alcotest.(check string) "case-insensitive" "e8a" job.Experiment.id
  | None -> Alcotest.fail "Registry.find E8A = None");
  Alcotest.(check bool) "unknown id" true (Registry.find "e99" = None)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_selection () =
  (match Bench.selection [ "a3"; "e1" ] with
  | Ok jobs ->
    Alcotest.(check (list string)) "canonical order kept" [ "e1"; "a3" ]
      (List.map (fun job -> job.Experiment.id) jobs)
  | Error m -> Alcotest.fail m);
  match Bench.selection [ "e1"; "nope" ] with
  | Ok _ -> Alcotest.fail "unknown id accepted"
  | Error message ->
    Alcotest.(check bool) "names the unknown id" true (contains ~needle:"nope" message)

(* --- bench compare (perf-regression harness) ------------------------------ *)

let results_file times =
  Json.Obj
    [
      ("schema", Json.String "securebit-bench/1");
      ( "experiments",
        Json.List
          (List.map
             (fun (id, seconds) ->
               Json.Obj [ ("id", Json.String id); ("wall_seconds", Json.Float seconds) ])
             times) );
    ]

let with_temp_results times f =
  let path = Filename.temp_file "securebit_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Json.to_string_pretty (results_file times)));
      f path)

(* The acceptance bar for the harness: an injected >20% slowdown must come
   back flagged (callers exit non-zero on [any_regression]). *)
let test_compare_detects_injected_regression () =
  with_temp_results
    [ ("e1", 10.0); ("e2", 10.0) ]
    (fun base ->
      with_temp_results
        [ ("e1", 9.0); ("e2", 13.0) ]
        (fun current ->
          match Bench.compare_files ~base ~current () with
          | Error m -> Alcotest.fail m
          | Ok (report, any_regression) ->
            Alcotest.(check bool) "regression flagged" true any_regression;
            Alcotest.(check bool) "report says REGRESSED" true
              (contains ~needle:"REGRESSED" report);
            Alcotest.(check bool) "report names e2" true (contains ~needle:"e2" report)))

let test_compare_clean_run_passes () =
  with_temp_results
    [ ("e1", 10.0); ("e2", 4.0) ]
    (fun base ->
      with_temp_results
        [ ("e1", 11.5); ("e2", 2.0) ]
        (fun current ->
          (* 15% slower is inside the 20% tolerance. *)
          match Bench.compare_files ~base ~current () with
          | Error m -> Alcotest.fail m
          | Ok (report, any_regression) ->
            Alcotest.(check bool) "no regression" false any_regression;
            Alcotest.(check bool) "report says clean" true
              (contains ~needle:"no wall-time regressions" report)))

let test_compare_semantics () =
  let cmp base_seconds current_seconds =
    { Bench.cmp_id = "x"; base_seconds; current_seconds }
  in
  (* Exactly at the threshold is not a regression; just beyond is. *)
  Alcotest.(check bool) "20% exactly passes" false
    (Bench.regressed (cmp (Some 10.0) (Some 12.0)));
  Alcotest.(check bool) "beyond 20% fails" true
    (Bench.regressed (cmp (Some 10.0) (Some 12.01)));
  Alcotest.(check bool) "custom tolerance" true
    (Bench.regressed ~tolerance:0.05 (cmp (Some 10.0) (Some 11.0)));
  (* Sub-noise-floor runs are never flagged, however large the ratio. *)
  Alcotest.(check bool) "below noise floor" false
    (Bench.regressed (cmp (Some 0.01) (Some 0.04)));
  (* Experiments present on only one side are reported, not flagged. *)
  Alcotest.(check bool) "missing current" false (Bench.regressed (cmp (Some 1.0) None));
  Alcotest.(check bool) "missing base" false (Bench.regressed (cmp None (Some 1.0)));
  match Bench.speedup (cmp (Some 10.0) (Some 4.0)) with
  | Some s -> Alcotest.(check (float 1e-9)) "speedup" 2.5 s
  | None -> Alcotest.fail "speedup missing"

let test_compare_pairing () =
  let comparisons =
    Bench.compare_wall_times
      ~base:[ ("gone", 1.0); ("e1", 2.0) ]
      ~current:[ ("e1", 1.5); ("fresh", 0.5) ]
  in
  Alcotest.(check (list string)) "current order first, removed appended"
    [ "e1"; "fresh"; "gone" ]
    (List.map (fun c -> c.Bench.cmp_id) comparisons);
  let find id = List.find (fun c -> c.Bench.cmp_id = id) comparisons in
  Alcotest.(check bool) "fresh has no baseline" true ((find "fresh").Bench.base_seconds = None);
  Alcotest.(check bool) "gone has no current" true ((find "gone").Bench.current_seconds = None)

let test_compare_rejects_bad_files () =
  (match Bench.load_wall_times "/nonexistent/results.json" with
  | Ok _ -> Alcotest.fail "accepted a missing file"
  | Error _ -> ());
  let path = Filename.temp_file "securebit_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "{\"not\": \"bench\"}");
      match Bench.load_wall_times path with
      | Ok _ -> Alcotest.fail "accepted a non-results file"
      | Error message ->
        Alcotest.(check bool) "diagnostic mentions experiments" true
          (contains ~needle:"experiments" message))

(* --- allocation-rate gate ------------------------------------------------- *)

(* A results file with optional per-experiment words/active-round ceilings
   and measured rates, for exercising the allocation gate in isolation. *)
let alloc_results_file entries =
  Json.Obj
    [
      ("schema", Json.String "securebit-bench/1");
      ( "experiments",
        Json.List
          (List.map
             (fun (id, seconds, ceiling, rate) ->
               Json.Obj
                 ([ ("id", Json.String id); ("wall_seconds", Json.Float seconds) ]
                 @ (match ceiling with
                   | Some c -> [ ("max_words_per_active_round", Json.Float c) ]
                   | None -> [])
                 @
                 match rate with
                 | Some r ->
                   [ ("profile", Json.Obj [ ("words_per_active_round", Json.Float r) ]) ]
                 | None -> []))
             entries) );
    ]

let with_results_json json f =
  let path = Filename.temp_file "securebit_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string_pretty json));
      f path)

(* The acceptance bar for the dynamic half of the allocation gate: an
   injected words/active-round regression over a committed ceiling must
   fail the compare. *)
let test_compare_alloc_gate () =
  with_results_json
    (alloc_results_file [ ("e1", 10.0, Some 1000.0, None) ])
    (fun base ->
      with_results_json
        (alloc_results_file [ ("e1", 10.0, None, Some 1500.0) ])
        (fun current ->
          match Bench.compare_files ~base ~current () with
          | Error m -> Alcotest.fail m
          | Ok (report, failed) ->
            Alcotest.(check bool) "injected allocation regression flagged" true failed;
            Alcotest.(check bool) "report says OVER CEILING" true
              (contains ~needle:"OVER CEILING" report));
      with_results_json
        (alloc_results_file [ ("e1", 10.0, None, Some 900.0) ])
        (fun current ->
          match Bench.compare_files ~base ~current () with
          | Error m -> Alcotest.fail m
          | Ok (report, failed) ->
            Alcotest.(check bool) "within-ceiling rate passes" false failed;
            Alcotest.(check bool) "report confirms the gate ran" true
              (contains ~needle:"no allocation-rate ceilings exceeded" report));
      (* A ceiling the current run did not measure warns, never fails. *)
      with_results_json
        (alloc_results_file [ ("e1", 10.0, None, None) ])
        (fun current ->
          match Bench.compare_files ~base ~current () with
          | Error m -> Alcotest.fail m
          | Ok (report, failed) ->
            Alcotest.(check bool) "unmeasured ceiling is not a failure" false failed;
            Alcotest.(check bool) "reported as not profiled" true
              (contains ~needle:"not profiled" report)))

let test_alloc_checks_semantics () =
  let checks =
    Bench.alloc_checks
      ~base_rates:[ ("e1", 2000.0) ]
      ~ceilings:[ ("e1", 1000.0); ("e2", 500.0) ]
      ~rates:[ ("e1", 1200.0) ]
      ()
  in
  Alcotest.(check int) "one check per committed ceiling" 2 (List.length checks);
  Alcotest.(check bool) "measured rate over its ceiling" true
    (Bench.alloc_exceeded (List.nth checks 0));
  Alcotest.(check bool) "unmeasured ceiling not exceeded" false
    (Bench.alloc_exceeded (List.nth checks 1));
  (match Bench.alloc_delta (List.nth checks 0) with
  | Some d -> Alcotest.(check (float 1e-9)) "delta vs the baseline's measured rate" (-0.4) d
  | None -> Alcotest.fail "expected a delta for the profiled pair");
  Alcotest.(check bool) "no delta without a baseline rate" true
    (Bench.alloc_delta (List.nth checks 1) = None)

(* --- Runner byte-identity ------------------------------------------------- *)

(* The acceptance bar for the parallel runner: the rendered table, the fits,
   the notes and the stable JSON of `--jobs 4` are byte-identical to
   `--jobs 1`.  Sampled on the cheap registry jobs (an analytic table, a
   theory sweep, a small simulation grid). *)
let test_parallel_identity () =
  List.iter
    (fun id ->
      let job =
        match Registry.find id with
        | Some job -> job
        | None -> Alcotest.failf "missing job %s" id
      in
      let sequential = Runner.run_job ~jobs:1 ~scale:Experiment.Quick job in
      let parallel = Runner.run_job ~jobs:4 ~scale:Experiment.Quick job in
      Alcotest.(check string)
        (id ^ ": rendered output identical")
        (Runner.render sequential) (Runner.render parallel);
      Alcotest.(check string)
        (id ^ ": stable JSON identical")
        (Json.to_string (Runner.stable_json sequential))
        (Json.to_string (Runner.stable_json parallel)))
    [ "bounds"; "e8a"; "a3" ]

(* The sanitized parallel run must agree with plain sequential execution on
   real registry jobs — i.e. the dynamic race check stays silent on the
   actual trial workload and does not perturb any output. *)
let test_sanitize_matches_sequential () =
  List.iter
    (fun id ->
      let job =
        match Registry.find id with
        | Some job -> job
        | None -> Alcotest.failf "missing job %s" id
      in
      let sequential = Runner.run_job ~jobs:1 ~scale:Experiment.Quick job in
      let sanitized = Runner.run_job ~jobs:2 ~sanitize:true ~scale:Experiment.Quick job in
      Alcotest.(check string)
        (id ^ ": sanitized render identical to jobs=1")
        (Runner.render sequential) (Runner.render sanitized);
      Alcotest.(check string)
        (id ^ ": sanitized stable JSON identical to jobs=1")
        (Json.to_string (Runner.stable_json sequential))
        (Json.to_string (Runner.stable_json sanitized)))
    [ "bounds"; "e8a" ]

(* --- Profiling ------------------------------------------------------------ *)

let test_profile_counters () =
  let job =
    match Registry.find "e8a" with
    | Some job -> job
    | None -> Alcotest.fail "missing job e8a"
  in
  let plain = Runner.run_job ~scale:Experiment.Quick job in
  Alcotest.(check bool) "no profile unless requested" true (plain.Runner.profile = None);
  let profiled = Runner.run_job ~profile:true ~scale:Experiment.Quick job in
  (match profiled.Runner.profile with
  | None -> Alcotest.fail "profile requested but absent"
  | Some p ->
    Alcotest.(check bool) "simulated some rounds" true (p.Runner.rounds_simulated > 0);
    Alcotest.(check bool) "rounds/s positive" true (p.Runner.rounds_per_second > 0.0);
    Alcotest.(check bool) "allocation observed" true (p.Runner.minor_words > 0.0);
    Alcotest.(check bool) "active rounds counted" true (p.Runner.active_rounds > 0);
    Alcotest.(check bool) "active rounds within simulated rounds" true
      (p.Runner.active_rounds <= p.Runner.rounds_simulated);
    Alcotest.(check bool) "words/active-round computed" true
      (p.Runner.words_per_active_round > 0.0);
    match p.Runner.workers with
    | [ w ] ->
      Alcotest.(check int) "single coordinator worker at jobs=1" 0 w.Pool.domain_index;
      Alcotest.(check bool) "worker ran the trials" true (w.Pool.tasks_run > 0)
    | ws -> Alcotest.failf "expected one worker stat at jobs=1, got %d" (List.length ws));
  (* The profile rides in the JSON but never perturbs the stable part that
     tables and comparisons are built from. *)
  Alcotest.(check string) "stable JSON unchanged by profiling"
    (Json.to_string (Runner.stable_json plain))
    (Json.to_string (Runner.stable_json profiled));
  let json = Json.to_string (Runner.json_of_outcome profiled) in
  Alcotest.(check bool) "profile embedded in the results JSON" true
    (contains ~needle:"rounds_per_second" json);
  Alcotest.(check bool) "per-worker stats embedded in the results JSON" true
    (contains ~needle:"workers" json);
  (* bench compare only reads id + wall_seconds, so profiled results files
     remain valid comparison inputs. *)
  let results = Runner.results_json ~scale:Experiment.Quick ~jobs:1 [ profiled ] in
  match Bench.wall_times_of_results results with
  | Ok [ (id, seconds) ] ->
    Alcotest.(check string) "id survives" "e8a" id;
    Alcotest.(check bool) "wall time read back" true (seconds >= 0.0)
  | Ok other -> Alcotest.failf "expected one entry, got %d" (List.length other)
  | Error message -> Alcotest.failf "profiled results rejected by compare: %s" message

(* Sanitized parallel maps of a pure function agree with List.map for any
   worker count — the sanitizer's sequential re-run never perturbs clean
   results. *)
let prop_pool_sanitize_matches_map =
  QCheck.Test.make ~name:"Pool.map_list ~sanitize = List.map (jobs 1..6)" ~count:40
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_bound 50) small_int))
    (fun (jobs, xs) ->
      let f x = (x * x) - (3 * x) + 7 in
      Pool.map_list ~sanitize:true ~jobs f xs = List.map f xs)

let qtests = [ prop_pool_matches_map; prop_pool_sanitize_matches_map ]

let () =
  Alcotest.run "run"
    [
      ( "pool",
        [
          Alcotest.test_case "empty" `Quick test_pool_empty;
          Alcotest.test_case "order" `Quick test_pool_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "available cores" `Quick test_pool_cores;
          Alcotest.test_case "sanitizer catches racy tasks" `Quick test_pool_sanitize_catches_race;
          Alcotest.test_case "sanitizer passes clean tasks" `Quick test_pool_sanitize_clean;
          Alcotest.test_case "per-worker stats" `Quick test_pool_worker_stats;
        ] );
      ( "registry",
        [
          Alcotest.test_case "completeness" `Quick test_registry_complete;
          Alcotest.test_case "unique ids" `Quick test_registry_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "bench selection" `Quick test_selection;
        ] );
      ( "bench compare",
        [
          Alcotest.test_case "injected regression detected" `Quick
            test_compare_detects_injected_regression;
          Alcotest.test_case "clean run passes" `Quick test_compare_clean_run_passes;
          Alcotest.test_case "threshold and noise floor" `Quick test_compare_semantics;
          Alcotest.test_case "pairing" `Quick test_compare_pairing;
          Alcotest.test_case "bad files rejected" `Quick test_compare_rejects_bad_files;
          Alcotest.test_case "injected words/active-round regression detected" `Quick
            test_compare_alloc_gate;
          Alcotest.test_case "allocation-check semantics" `Quick test_alloc_checks_semantics;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs=4 byte-identical to jobs=1" `Quick test_parallel_identity;
          Alcotest.test_case "sanitized run byte-identical to jobs=1" `Quick
            test_sanitize_matches_sequential;
          Alcotest.test_case "profile counters" `Quick test_profile_counters;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
