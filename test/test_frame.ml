(* Tests for the MultiPathRB wire frames: self-delimiting encoding, index
   bounds, lattice snapping, and delta clamping. *)

let codec = Frame.codec ~msg_len:16 ~coord_range:8.0 ~coord_step:0.5

let frame_testable =
  let pp fmt = function
    | Frame.Source v -> Format.fprintf fmt "Source %b" v
    | Frame.Commit { index; value } -> Format.fprintf fmt "Commit(%d,%b)" index value
    | Frame.Heard { index; value; cause = dx, dy } ->
      Format.fprintf fmt "Heard(%d,%b,(%d,%d))" index value dx dy
  in
  Alcotest.testable pp ( = )

let roundtrip frame = Frame.decode codec (Frame.encode codec frame)

let test_roundtrip_source () =
  Alcotest.(check (option frame_testable)) "source true" (Some (Frame.Source true))
    (roundtrip (Frame.Source true));
  Alcotest.(check (option frame_testable)) "source false" (Some (Frame.Source false))
    (roundtrip (Frame.Source false))

let test_roundtrip_commit () =
  List.iter
    (fun index ->
      let frame = Frame.Commit { index; value = index mod 2 = 0 } in
      Alcotest.(check (option frame_testable)) "commit" (Some frame) (roundtrip frame))
    [ 0; 1; 7; 15 ]

let test_roundtrip_heard () =
  List.iter
    (fun cause ->
      let frame = Frame.Heard { index = 3; value = true; cause } in
      Alcotest.(check (option frame_testable)) "heard" (Some frame) (roundtrip frame))
    [ (0, 0); (16, -16); (-16, 16); (5, -3) ]

let test_lengths_match_tag () =
  List.iter
    (fun frame ->
      let bits = Frame.encode codec frame in
      let tag = (Bitvec.get bits 0, Bitvec.get bits 1) in
      Alcotest.(check (option int)) "self-delimiting"
        (Some (Bitvec.length bits))
        (Frame.length_from_tag codec tag))
    [
      Frame.Source true;
      Frame.Commit { index = 5; value = false };
      Frame.Heard { index = 9; value = true; cause = (1, 1) };
    ]

let test_invalid_tag () =
  Alcotest.(check (option int)) "tag 11 invalid" None (Frame.length_from_tag codec (true, true));
  Alcotest.(check (option frame_testable)) "decode tag 11" None
    (Frame.decode codec (Bitvec.of_string "111"))

let test_wrong_length_rejected () =
  let bits = Frame.encode codec (Frame.Commit { index = 1; value = true }) in
  let truncated = Bitvec.sub bits ~pos:0 ~len:(Bitvec.length bits - 1) in
  Alcotest.(check (option frame_testable)) "truncated" None (Frame.decode codec truncated)

let test_out_of_range_index_rejected () =
  (* With msg_len = 5 the index field has 3 bits, so the all-ones field
     codes index 7 >= 5, which must be rejected. *)
  let c5 = Frame.codec ~msg_len:5 ~coord_range:8.0 ~coord_step:0.5 in
  let bits =
    Bitvec.concat
      [ Bitvec.of_list [ false; true ]; Bitvec.create (Frame.index_bits c5) true;
        Bitvec.of_list [ true ] ]
  in
  Alcotest.(check (option frame_testable)) "index out of range" None (Frame.decode c5 bits)

let test_delta_clamping () =
  (* coord_range 8.0 at step 0.5 -> max delta 16 cells. *)
  match roundtrip (Frame.Heard { index = 0; value = false; cause = (100, -100) }) with
  | Some (Frame.Heard { cause = dx, dy; _ }) ->
    Alcotest.(check int) "dx clamped" 16 dx;
    Alcotest.(check int) "dy clamped" (-16) dy
  | Some _ | None -> Alcotest.fail "expected heard frame"

let test_snap_canonical () =
  let a = Frame.snap codec (Point.make 3.20 4.90) in
  let b = Frame.snap codec (Point.make 3.05 5.10) in
  Alcotest.(check (pair int int)) "nearby points share a cell" a b;
  Alcotest.(check (pair int int)) "expected cell" (6, 10) a

let test_lattice_point () =
  let p = Frame.lattice_point codec (6, 10) in
  Alcotest.(check (float 1e-9)) "x" 3.0 p.Point.x;
  Alcotest.(check (float 1e-9)) "y" 5.0 p.Point.y

let test_index_bits_sizing () =
  Alcotest.(check int) "16 values need 4 bits" 4 (Frame.index_bits codec);
  let c1 = Frame.codec ~msg_len:1 ~coord_range:4.0 ~coord_step:0.5 in
  Alcotest.(check int) "at least one bit" 1 (Frame.index_bits c1);
  let c5 = Frame.codec ~msg_len:5 ~coord_range:4.0 ~coord_step:0.5 in
  Alcotest.(check int) "5 values need 3 bits" 3 (Frame.index_bits c5)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip for in-range frames" ~count:500
    QCheck.(
      triple (int_range 0 15) bool (pair (int_range (-16) 16) (int_range (-16) 16)))
    (fun (index, value, cause) ->
      let frames =
        [ Frame.Source value; Frame.Commit { index; value }; Frame.Heard { index; value; cause } ]
      in
      List.for_all (fun f -> roundtrip f = Some f) frames)

let prop_snap_consistent_with_lattice =
  QCheck.Test.make ~name:"snap(lattice_point k) = k" ~count:300
    QCheck.(pair (int_range (-40) 40) (int_range (-40) 40))
    (fun k -> Frame.snap codec (Frame.lattice_point codec k) = k)

let qtests = [ prop_roundtrip; prop_snap_consistent_with_lattice ]

let () =
  Alcotest.run "frame"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip source" `Quick test_roundtrip_source;
          Alcotest.test_case "roundtrip commit" `Quick test_roundtrip_commit;
          Alcotest.test_case "roundtrip heard" `Quick test_roundtrip_heard;
          Alcotest.test_case "self-delimiting lengths" `Quick test_lengths_match_tag;
          Alcotest.test_case "invalid tag" `Quick test_invalid_tag;
          Alcotest.test_case "wrong length rejected" `Quick test_wrong_length_rejected;
          Alcotest.test_case "out-of-range index rejected" `Quick
            test_out_of_range_index_rejected;
          Alcotest.test_case "delta clamping" `Quick test_delta_clamping;
          Alcotest.test_case "snap canonical" `Quick test_snap_canonical;
          Alcotest.test_case "lattice point" `Quick test_lattice_point;
          Alcotest.test_case "index bits sizing" `Quick test_index_bits_sizing;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
