(* Tests for the scale campaign driver: plan/dry-run agreement with real
   execution, archived results, config validation, and the bench-compare
   peak-heap ceiling gate. *)

(* A campaign small enough to execute in well under a second per run but
   still covering both graph classes, a warm phase, sharding, and the
   trace check against the serial engine. *)
let tiny config =
  {
    config with
    Campaign.label = "tiny";
    node_counts = [ 60 ];
    densities = [ 8.0 ];
    adversaries = [ "honest" ];
    classes = Campaign.all_classes;
    tiles = 2;
    warm = 1;
    message = "1";
    check = true;
  }

let run_exn config =
  match Campaign.run config with
  | Ok (executed, failed) -> (executed, failed)
  | Error message -> Alcotest.fail message

(* The --dry-run preview must list exactly the runs a real invocation
   executes, in order. *)
let test_dry_run_matches_execution () =
  let config = tiny Campaign.default in
  let executed, failed = run_exn config in
  Alcotest.(check bool) "no ceiling configured, nothing fails" false failed;
  Alcotest.(check (list string))
    "executed run ids = planned run ids"
    (List.map (fun p -> p.Campaign.run_id) (Campaign.plan config))
    (List.map (fun e -> e.Campaign.planned.Campaign.run_id) executed);
  let dry, dry_failed = run_exn { config with Campaign.dry_run = true } in
  Alcotest.(check bool) "dry run executes nothing" true (dry = [] && not dry_failed)

let test_plan_shape () =
  let config =
    { (tiny Campaign.default) with
      Campaign.node_counts = [ 10; 20 ];
      densities = [ 4.0 ];
      adversaries = [ "honest"; "lying" ];
      warm = 2;
    }
  in
  let plans = Campaign.plan config in
  (* 2 classes × 2 node counts × 1 density × 2 adversaries × (1 cold + 2 warm) *)
  Alcotest.(check int) "plan size" 24 (List.length plans);
  Alcotest.(check string) "run id format" "n10-d4-honest-uniform-cold"
    (List.hd plans).Campaign.run_id;
  let ids = List.map (fun p -> p.Campaign.run_id) plans in
  Alcotest.(check int) "run ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_archive () =
  let out_dir = Filename.temp_file "campaign" "" in
  Sys.remove out_dir;
  let config = { (tiny Campaign.default) with Campaign.out_dir = Some out_dir; check = false } in
  let executed, _ = run_exn config in
  let dir = Filename.concat out_dir config.Campaign.label in
  List.iter
    (fun e ->
      let path = Filename.concat dir (e.Campaign.planned.Campaign.run_id ^ ".json") in
      Alcotest.(check bool) (path ^ " archived") true (Sys.file_exists path);
      match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
      | Error message -> Alcotest.fail message
      | Ok json ->
        Alcotest.(check (option string))
          "archived schema" (Some "securebit-campaign/1")
          (Option.bind (Json.member "schema" json) Json.to_string_opt))
    executed;
  match Json.of_string
          (In_channel.with_open_text (Filename.concat dir "manifest.json") In_channel.input_all)
  with
  | Error message -> Alcotest.fail message
  | Ok json ->
    let runs =
      match Option.bind (Json.member "runs" json) Json.to_list_opt with
      | Some entries -> List.filter_map Json.to_string_opt entries
      | None -> []
    in
    Alcotest.(check (list string))
      "manifest lists every run"
      (List.map (fun e -> e.Campaign.planned.Campaign.run_id) executed)
      runs

let test_validation () =
  let bad message config =
    match Campaign.run config with
    | Ok _ -> Alcotest.fail ("accepted " ^ message)
    | Error _ -> ()
  in
  bad "tiles 0" { (tiny Campaign.default) with Campaign.tiles = 0 };
  bad "unknown adversary" { (tiny Campaign.default) with Campaign.adversaries = [ "gremlin" ] };
  bad "empty node counts" { (tiny Campaign.default) with Campaign.node_counts = [] };
  bad "negative warm" { (tiny Campaign.default) with Campaign.warm = -1 }

let test_mem_ceiling_fails () =
  (* One word is below any real peak, so the gate must trip. *)
  let config = { (tiny Campaign.default) with Campaign.mem_ceiling_words = Some 1; check = false } in
  let _, failed = run_exn config in
  Alcotest.(check bool) "one-word ceiling trips" true failed

(* --- bench compare: peak-heap ceilings ---------------------------------- *)

let parse s = match Json.of_string s with Ok j -> j | Error m -> Alcotest.fail m

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

let baseline_with_ceiling =
  {|{ "schema": "securebit-bench/1",
      "experiments": [
        { "id": "e1", "wall_seconds": 1.0, "max_heap_words": 1000 },
        { "id": "e2", "wall_seconds": 1.0 } ] }|}

let current_with_profile peak =
  Printf.sprintf
    {|{ "schema": "securebit-bench/1",
        "experiments": [
          { "id": "e1", "wall_seconds": 1.0, "profile": { "top_heap_words": %d } },
          { "id": "e2", "wall_seconds": 1.0 } ] }|}
    peak

let test_heap_parsing () =
  Alcotest.(check (list (pair string int)))
    "ceilings parsed" [ ("e1", 1000) ]
    (Bench.heap_ceilings_of_results (parse baseline_with_ceiling));
  Alcotest.(check (list (pair string int)))
    "peaks parsed" [ ("e1", 2000) ]
    (Bench.heap_peaks_of_results (parse (current_with_profile 2000)))

let with_temp_files base current f =
  let write contents =
    let path = Filename.temp_file "bench" ".json" in
    Out_channel.with_open_text path (fun oc -> output_string oc contents);
    path
  in
  let base_path = write base and current_path = write current in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove base_path;
      Sys.remove current_path)
    (fun () -> f base_path current_path)

let test_memory_gate_trips () =
  with_temp_files baseline_with_ceiling (current_with_profile 2000) (fun base current ->
      match Bench.compare_files ~base ~current () with
      | Error message -> Alcotest.fail message
      | Ok (report, failed) ->
        Alcotest.(check bool) "peak over ceiling fails" true failed;
        Alcotest.(check bool) "report names the breach" true
          ((contains ~affix:"OVER CEILING" report)))

let test_memory_gate_passes () =
  with_temp_files baseline_with_ceiling (current_with_profile 500) (fun base current ->
      match Bench.compare_files ~base ~current () with
      | Error message -> Alcotest.fail message
      | Ok (_, failed) -> Alcotest.(check bool) "peak under ceiling passes" false failed)

let test_memory_gate_unprofiled_warns () =
  (* A ceiling the current run did not measure is a warning, not a
     failure — unprofiled comparisons still gate wall time alone. *)
  with_temp_files baseline_with_ceiling
    {|{ "schema": "securebit-bench/1",
        "experiments": [
          { "id": "e1", "wall_seconds": 1.0 },
          { "id": "e2", "wall_seconds": 1.0 } ] }|}
    (fun base current ->
      match Bench.compare_files ~base ~current () with
      | Error message -> Alcotest.fail message
      | Ok (report, failed) ->
        Alcotest.(check bool) "unmeasured ceiling does not fail" false failed;
        Alcotest.(check bool) "report warns" true
          ((contains ~affix:"not checked" report)))

let test_memory_check_semantics () =
  let checks =
    Bench.memory_checks
      ~ceilings:[ ("a", 100); ("b", 100); ("c", 100) ]
      ~peaks:[ ("a", 100); ("b", 101) ]
  in
  Alcotest.(check (list bool))
    "exceeded iff peak > ceiling" [ false; true; false ]
    (List.map Bench.memory_exceeded checks)

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "dry-run preview = execution" `Quick test_dry_run_matches_execution;
          Alcotest.test_case "plan shape and run ids" `Quick test_plan_shape;
          Alcotest.test_case "archived results + manifest" `Quick test_archive;
          Alcotest.test_case "config validation" `Quick test_validation;
          Alcotest.test_case "memory ceiling trips" `Quick test_mem_ceiling_fails;
        ] );
      ( "bench memory gate",
        [
          Alcotest.test_case "heap fields parsed" `Quick test_heap_parsing;
          Alcotest.test_case "over ceiling fails compare" `Quick test_memory_gate_trips;
          Alcotest.test_case "under ceiling passes" `Quick test_memory_gate_passes;
          Alcotest.test_case "unprofiled ceiling warns" `Quick test_memory_gate_unprofiled_warns;
          Alcotest.test_case "memory_checks pairing" `Quick test_memory_check_semantics;
        ] );
    ]
