(* Tests for the scenario assembly and metrics layer. *)

let base =
  {
    Scenario.default with
    map_w = 8.0;
    map_h = 8.0;
    deployment = Scenario.Uniform 80;
    radius = 2.0;
    message = Bitvec.of_string "101";
  }

let test_deterministic () =
  let a = Scenario.summarize (Scenario.run base) in
  let b = Scenario.summarize (Scenario.run base) in
  Alcotest.(check int) "rounds equal" a.Scenario.rounds b.Scenario.rounds;
  Alcotest.(check int) "broadcasts equal" a.Scenario.total_broadcasts b.Scenario.total_broadcasts;
  Alcotest.(check int) "deliveries equal" a.Scenario.delivered_any b.Scenario.delivered_any

let test_seed_changes_runs () =
  let a = Scenario.summarize (Scenario.run base) in
  let b = Scenario.summarize (Scenario.run { base with Scenario.seed = base.Scenario.seed + 1 }) in
  Alcotest.(check bool) "some metric differs" true
    (a.Scenario.rounds <> b.Scenario.rounds
    || a.Scenario.total_broadcasts <> b.Scenario.total_broadcasts)

let test_summary_consistency () =
  List.iter
    (fun faults ->
      let s = Scenario.summarize (Scenario.run { base with Scenario.faults; seed = 7 }) in
      Alcotest.(check bool) "correct <= delivered" true
        (s.Scenario.delivered_correct <= s.Scenario.delivered_any);
      Alcotest.(check bool) "delivered <= honest" true
        (s.Scenario.delivered_any <= s.Scenario.honest_nodes);
      Alcotest.(check bool) "rates in [0,1]" true
        (s.Scenario.completion_rate >= 0.0 && s.Scenario.completion_rate <= 1.0
        && s.Scenario.correct_rate >= 0.0 && s.Scenario.correct_rate <= 1.0
        && s.Scenario.correct_of_delivered >= 0.0 && s.Scenario.correct_of_delivered <= 1.0))
    [
      Scenario.No_faults;
      Scenario.Crash 0.3;
      Scenario.Lying 0.2;
      Scenario.Jamming { fraction = 0.1; budget = 10; probability = 0.2 };
    ]

let test_fault_assignment_counts () =
  let result = Scenario.run { base with Scenario.faults = Scenario.Lying 0.25; seed = 3 } in
  let honest = Array.to_list result.Scenario.honest in
  let byzantine = List.length (List.filter not honest) in
  Alcotest.(check int) "25% of 80 nodes lie" 20 byzantine;
  Alcotest.(check bool) "source stays honest" true result.Scenario.honest.(result.Scenario.source)

let test_fake_message () =
  let fake = Scenario.fake_message (Bitvec.of_string "1010") in
  Alcotest.(check string) "complement" "0101" (Bitvec.to_string fake)

let test_grid_deployment_dimensions () =
  let spec =
    { base with Scenario.deployment = Scenario.Grid; radio = Scenario.Disk_linf; map_w = 6.0;
      map_h = 6.0 }
  in
  let result = Scenario.run spec in
  Alcotest.(check int) "7x7 grid" 49 (Topology.size result.Scenario.topology)

let test_source_is_central () =
  let result = Scenario.run base in
  let pos = Topology.position result.Scenario.topology result.Scenario.source in
  Alcotest.(check bool) "source near centre" true
    (Point.dist_l2 pos (Point.make 4.0 4.0) < 2.0)

let test_crash_excluded_from_metrics () =
  let s = Scenario.summarize (Scenario.run { base with Scenario.faults = Scenario.Crash 0.25 }) in
  Alcotest.(check int) "crashed removed from honest count" (80 - 20 - 1) s.Scenario.honest_nodes

(* --- Ascii map ---------------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

(* The last line of a rendering is the legend; the grid is what precedes. *)
let grid_of rendered =
  match List.rev (List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)) with
  | _legend :: rows -> String.concat "\n" (List.rev rows)
  | [] -> ""

let test_ascii_map_clean_run () =
  let grid = grid_of (Ascii_map.render (Scenario.run base)) in
  Alcotest.(check bool) "marks the source" true (contains grid "S");
  Alcotest.(check bool) "marks correct deliveries" true (contains grid "#");
  Alcotest.(check bool) "no fakes in a clean run" false (contains grid "x");
  Alcotest.(check bool) "no liars in a clean run" false (contains grid "L");
  Alcotest.(check int) "one row per map unit" 8
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' grid)))

let test_ascii_map_marks_liars () =
  let grid =
    grid_of
      (Ascii_map.render
         (Scenario.run { base with Scenario.faults = Scenario.Lying 0.2; seed = 3 }))
  in
  Alcotest.(check bool) "liars visible" true (contains grid "L")

let test_ascii_map_marks_jammers () =
  let grid =
    grid_of
      (Ascii_map.render
         (Scenario.run
            { base with
              Scenario.faults = Scenario.Jamming { fraction = 0.2; budget = 5; probability = 0.2 };
              seed = 3 }))
  in
  Alcotest.(check bool) "jammers visible" true (contains grid "J")

(* --- Experiment repetition helper ------------------------------------- *)

let test_experiment_seeds () =
  let config = { Experiment.repetitions = 5; base_seed = 10 } in
  let seeds = Experiment.seeds config in
  Alcotest.(check int) "count" 5 (List.length seeds);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq Int.compare seeds))

let test_experiment_aggregate () =
  let mk rate rounds =
    {
      Scenario.honest_nodes = 100;
      delivered_any = int_of_float (rate *. 100.0);
      delivered_correct = int_of_float (rate *. 100.0);
      completion_rate = rate;
      correct_of_delivered = 1.0;
      correct_rate = rate;
      rounds;
      active_rounds = rounds;
      hit_cap = false;
      total_broadcasts = 1000;
      mean_completion_round = 10.0;
    }
  in
  let agg = Experiment.aggregate [ mk 0.8 100; mk 1.0 200 ] in
  Alcotest.(check (float 1e-9)) "mean completion" 0.9 agg.Experiment.completion_rate;
  Alcotest.(check (float 1e-9)) "mean rounds" 150.0 agg.Experiment.rounds;
  Alcotest.(check int) "runs" 2 agg.Experiment.runs

let test_experiment_measure_runs () =
  let config = { Experiment.repetitions = 2; base_seed = 42 } in
  let agg = Experiment.measure config base in
  Alcotest.(check int) "two runs" 2 agg.Experiment.runs;
  Alcotest.(check bool) "produced rounds" true (agg.Experiment.rounds > 0.0)

let () =
  Alcotest.run "scenario"
    [
      ( "assembly",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_runs;
          Alcotest.test_case "summary consistency" `Quick test_summary_consistency;
          Alcotest.test_case "fault assignment" `Quick test_fault_assignment_counts;
          Alcotest.test_case "fake message" `Quick test_fake_message;
          Alcotest.test_case "grid dimensions" `Quick test_grid_deployment_dimensions;
          Alcotest.test_case "source central" `Quick test_source_is_central;
          Alcotest.test_case "crash metrics" `Quick test_crash_excluded_from_metrics;
        ] );
      ( "ascii-map",
        [
          Alcotest.test_case "clean run" `Quick test_ascii_map_clean_run;
          Alcotest.test_case "liars visible" `Quick test_ascii_map_marks_liars;
          Alcotest.test_case "jammers visible" `Quick test_ascii_map_marks_jammers;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "seeds" `Quick test_experiment_seeds;
          Alcotest.test_case "aggregate" `Quick test_experiment_aggregate;
          Alcotest.test_case "measure" `Quick test_experiment_measure_runs;
        ] );
    ]
